//! Flight-recorder telemetry: end-to-end guarantees.
//!
//! Three properties the trace subsystem must keep:
//!
//! 1. **Zero cost when off** — `TraceConfig::Off` (the default) leaves every
//!    golden metric byte-identical, and turning tracing *on* still does not
//!    perturb the simulation itself (identical FCTs, counters and loss).
//! 2. **Determinism** — the same seed produces byte-identical trace CSV
//!    across repeated runs and across driver thread counts (per-worker
//!    sinks travel inside results, which merge in config order).
//! 3. **Fidelity** — a traced MMPTCP flow's series visibly contains the
//!    packet-scatter→MPTCP switch: scatter samples before the instant,
//!    MPTCP-subflow samples only from it onwards, and a `phase_switch` row
//!    in the event log.

use mmptcp::prelude::*;
use mmptcp::scenario;
use mmptcp::{TopologySpec, WorkloadSpec};
use netsim::Addr;

fn tiny_config(protocol: Protocol, seed: u64, flows: &[(u64, u64)]) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::Parallel(ParallelPathConfig {
            host_pairs: 2,
            paths: 4,
            ..ParallelPathConfig::default()
        }),
        workload: WorkloadSpec::Custom(
            flows
                .iter()
                .map(|&(id, size)| {
                    FlowSpec::new(
                        id,
                        Addr((id % 2) as u32 * 2),
                        Addr((id % 2) as u32 * 2 + 1),
                        Some(size),
                        SimTime::from_millis(1 + id),
                        FlowClass::Short,
                    )
                })
                .collect(),
        ),
        protocol,
        seed,
        ..ExperimentConfig::default()
    }
}

fn traced(mut config: ExperimentConfig, links: bool) -> ExperimentConfig {
    config.trace = TraceConfig::On(TraceSettings {
        links,
        ..TraceSettings::default()
    });
    config
}

#[test]
fn untraced_runs_carry_no_sink() {
    let r = mmptcp::run(tiny_config(Protocol::Tcp, 1, &[(0, 30_000)]));
    assert!(r.trace.is_none());
    assert!(r.all_short_completed);
}

#[test]
fn traced_mmptcp_flow_shows_the_phase_switch() {
    // 500 KB through the default 210 KB data-volume trigger: the flow must
    // switch mid-transfer.
    let config = traced(
        tiny_config(Protocol::mmptcp_default(), 7, &[(0, 500_000)]),
        false,
    );
    let r = mmptcp::run(config);
    assert!(r.all_short_completed);
    let sink = r.trace.as_ref().expect("traced run must carry a sink");

    let switch = sink
        .events()
        .iter()
        .find(|e| e.kind == metrics::trace::TraceEventKind::PhaseSwitch)
        .copied()
        .expect("the flow must have switched phase");
    assert_eq!(switch.flow, 0);
    assert_eq!(switch.detail, 210_000, "switch carries bytes-sent");

    // Scatter subflow (0) has samples before the switch; every MPTCP
    // subflow's samples start at or after it.
    let scatter = sink.flow_series(0, 0).expect("scatter series");
    assert!(!scatter.is_empty());
    assert!(
        scatter.items().iter().any(|p| p.at < switch.at),
        "scatter cwnd evolution before the switch must be visible"
    );
    let mptcp_keys: Vec<(u64, u8)> = sink
        .flow_keys()
        .into_iter()
        .filter(|&(f, s)| f == 0 && s > 0)
        .collect();
    assert!(!mptcp_keys.is_empty(), "MPTCP subflows must have series");
    for (f, s) in mptcp_keys {
        let series = sink.flow_series(f, s).unwrap();
        assert!(
            series.items().iter().all(|p| p.at >= switch.at),
            "subflow {s} sampled before the switch"
        );
    }

    // The CSV export is non-empty and matches the documented schema.
    let csv = sink.flows_csv();
    assert!(csv.starts_with("flow,subflow,cc,t_ns,cwnd_bytes,srtt_us,outstanding_bytes\n"));
    assert!(csv.lines().count() > 2);
    assert!(sink.events_csv().contains("phase_switch"));
}

/// Every flows.csv row carries the stable label of the controller that
/// produced the sample, so mixed-controller experiments stay separable.
#[test]
fn trace_rows_carry_the_congestion_controller_label() {
    use mmptcp::transport::CongestionControl;
    for (cc, label) in [
        (CongestionControl::Reno, "reno"),
        (CongestionControl::Cubic, "cubic"),
        (CongestionControl::Bbr, "bbr"),
    ] {
        let mut cfg = tiny_config(Protocol::Tcp, 9, &[(0, 150_000)]);
        cfg.transport.cc = cc;
        let r = mmptcp::run(traced(cfg, false));
        let csv = r.trace.as_ref().unwrap().flows_csv();
        let mut rows = 0usize;
        for line in csv.lines().skip(1) {
            assert_eq!(
                line.split(',').nth(2),
                Some(label),
                "cc column mismatch in {line:?}"
            );
            rows += 1;
        }
        assert!(rows > 0, "{label}: no flow samples recorded");
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let base = tiny_config(Protocol::mmptcp_default(), 11, &[(0, 300_000), (1, 70_000)]);
    let plain = mmptcp::run(base.clone());
    let full = mmptcp::run(traced(base, true));
    assert_eq!(plain.short_fcts_ms(), full.short_fcts_ms());
    assert_eq!(plain.counters, full.counters);
    assert_eq!(plain.loss, full.loss);
}

#[test]
fn trace_csv_is_byte_identical_across_runs_and_thread_counts() {
    let configs: Vec<(String, ExperimentConfig)> = [
        (Protocol::Tcp, 1u64),
        (Protocol::mmptcp_default(), 2),
        (Protocol::Tcp, 3),
        (Protocol::mmptcp_default(), 4),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(p, seed))| {
        (
            format!("cfg{i}"),
            traced(tiny_config(p, seed, &[(0, 150_000), (1, 40_000)]), true),
        )
    })
    .collect();

    let render = |results: &[(String, mmptcp::ExperimentResults)]| -> Vec<String> {
        results
            .iter()
            .map(|(label, r)| {
                let sink = r.trace.as_ref().expect("sink");
                format!(
                    "{label}\n{}{}{}",
                    sink.flows_csv(),
                    sink.events_csv(),
                    sink.links_csv()
                )
            })
            .collect()
    };

    let serial_a = render(&Driver::with_threads(1).run_labelled(configs.clone()));
    let serial_b = render(&Driver::with_threads(1).run_labelled(configs.clone()));
    let parallel = render(&Driver::with_threads(4).run_labelled(configs));
    assert_eq!(serial_a, serial_b, "same seed, same trace bytes");
    assert_eq!(
        serial_a, parallel,
        "1-thread and 4-thread drivers must merge identical traces in config order"
    );
    assert!(serial_a.iter().all(|s| s.contains("flow,subflow")));
}

#[test]
fn link_series_record_fabric_activity() {
    let r = mmptcp::run(traced(tiny_config(Protocol::Tcp, 5, &[(0, 200_000)]), true));
    let sink = r.trace.as_ref().unwrap();
    assert!(sink.link_count() > 0);
    assert!(sink.link_sample_count() > 0);
    let mut carried = 0u64;
    let mut link = 0usize;
    while let Some(series) = sink.link_series(link) {
        for p in series.items() {
            carried += p.tx_bytes;
            assert!((0.0..=1.0).contains(&p.utilisation));
        }
        link += 1;
    }
    assert!(
        carried > 0,
        "sampled windows must account transmitted bytes"
    );
    assert!(sink
        .links_csv()
        .starts_with("link,t_ns,depth_packets,tx_packets,tx_bytes,drops,ecn_marks,utilisation\n"));
}

#[test]
fn flow_filter_restricts_series_to_one_flow() {
    let mut config = tiny_config(Protocol::Tcp, 9, &[(0, 50_000), (1, 50_000)]);
    config.trace = TraceConfig::On(TraceSettings {
        flows: FlowSelect::One(1),
        ..TraceSettings::default()
    });
    let r = mmptcp::run(config);
    let sink = r.trace.as_ref().unwrap();
    assert!(!sink.flow_keys().is_empty());
    assert!(sink.flow_keys().iter().all(|&(f, _)| f == 1));
}

/// `TraceConfig::Off` must leave the golden contract untouched: regenerating
/// a pinned scenario's canonical report (tracing off, as always) still
/// matches the committed snapshot byte for byte. This is the same comparison
/// `scenarios check` makes in CI, pinned here against the cheapest golden
/// scenario so the guarantee is also enforced by tier-1.
#[test]
fn trace_off_keeps_golden_metrics_byte_identical() {
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/fig1bc.json");
    let expected = std::fs::read_to_string(&golden).expect("committed golden snapshot");
    let run = scenario::find("fig1bc")
        .expect("catalog entry")
        .run(scenario::Fidelity::Fast, 2);
    assert_eq!(
        run.report.to_json(),
        expected,
        "TraceConfig::Off drifted the golden metrics"
    );
}
