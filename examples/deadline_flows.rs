//! Deadline-bound short flows: the motivation in the paper's introduction.
//!
//! Every short flow in the workload is given a completion deadline (slack ×
//! its ideal transfer time, with a 25 ms floor). The deadline-aware D²TCP
//! sender uses that information to modulate its window; TCP, MPTCP and MMPTCP
//! ignore it. The interesting comparison is the miss rate: MMPTCP aims to keep
//! short flows out of retransmission timeouts *without* needing the deadline
//! (or any other application-layer information) at all.
//!
//! Run with: `cargo run --release --example deadline_flows`

use mmptcp::prelude::*;

fn config(protocol: Protocol) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::benchmark()),
        workload: WorkloadSpec::Paper(PaperWorkloadConfig {
            flows_per_short_host: 4,
            deadlines: DeadlineModel::Slack {
                slack: 20.0,
                reference_gbps: 1.0,
                floor: SimDuration::from_millis(25),
            },
            ..PaperWorkloadConfig::default()
        }),
        protocol,
        seed: 21,
        goodput_horizon: Some(SimDuration::from_secs(1)),
        ..ExperimentConfig::default()
    }
}

fn main() {
    let mut table = Table::new(
        "Deadline misses of 70 KB short flows (slack 20x, 25 ms floor)",
        &[
            "protocol",
            "flows",
            "missed",
            "miss rate",
            "mean FCT (ms)",
            "p99 FCT (ms)",
            "flows w/ RTO",
        ],
    );
    for (name, protocol) in [
        ("tcp", Protocol::Tcp),
        ("d2tcp", Protocol::D2tcp),
        ("mptcp-8", Protocol::mptcp8()),
        ("mmptcp-8", Protocol::mmptcp_default()),
    ] {
        let r = mmptcp::run(config(protocol));
        let (missed, total) = r.deadline_misses();
        let s = r.short_fct_summary();
        table.add_row(vec![
            name.to_string(),
            total.to_string(),
            missed.to_string(),
            format!("{:.1}%", r.deadline_miss_rate() * 100.0),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.p99),
            r.short_flows_with_rto().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "MMPTCP needs no deadline information: its miss rate comes purely from keeping\n\
         short flows out of retransmission timeouts during the packet-scatter phase."
    );
}
