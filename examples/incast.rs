//! TCP incast: many senders blast a block of data at one receiver at the same
//! instant, overwhelming the receiver's access link ("tolerance to sudden and
//! high bursts of traffic" is MMPTCP objective (3) in the paper).
//!
//! MMPTCP's packet-scatter phase spreads each sender's burst across the whole
//! fabric, so the only remaining hot spot is the receiver's own access link;
//! TCP additionally suffers synchronised losses in the fabric.
//!
//! Run with: `cargo run --release --example incast`

use mmptcp::prelude::*;

fn incast(protocol: Protocol, fan_in: usize) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::benchmark()),
        workload: WorkloadSpec::Incast {
            fan_in,
            bytes: 64_000,
            start: SimTime::from_millis(1),
        },
        protocol,
        seed: 11,
        ..ExperimentConfig::default()
    }
}

fn main() {
    let fan_in = 16;
    let mut table = Table::new(
        format!("Incast: {fan_in} senders x 64 KB to one receiver"),
        &[
            "protocol",
            "flows",
            "mean FCT (ms)",
            "p99 (ms)",
            "max (ms)",
            "flows w/ RTO",
            "drops",
        ],
    );
    for (name, protocol) in [
        ("tcp", Protocol::Tcp),
        ("mptcp-8", Protocol::mptcp8()),
        ("mmptcp-8", Protocol::mmptcp_default()),
    ] {
        let r = mmptcp::run(incast(protocol, fan_in));
        let s = r.short_fct_summary();
        table.add_row(vec![
            name.to_string(),
            s.count.to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.p99),
            format!("{:.2}", s.max),
            r.short_flows_with_rto().to_string(),
            r.loss.total_dropped().to_string(),
        ]);
    }
    println!("{}", table.render());
}
