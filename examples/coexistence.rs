//! Co-existence: MMPTCP short flows sharing the fabric with legacy TCP or
//! MPTCP long flows (paper §3: "we expect that MMPTCP will be readily
//! deployable in existing data centres as it can coexist with other transport
//! protocols").
//!
//! Run with: `cargo run --release --example coexistence`

use mmptcp::prelude::*;

fn scenario(long_protocol: Option<Protocol>) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::benchmark()),
        workload: WorkloadSpec::Paper(PaperWorkloadConfig {
            flows_per_short_host: 4,
            ..PaperWorkloadConfig::default()
        }),
        protocol: Protocol::mmptcp_default(),
        long_protocol,
        seed: 21,
        ..ExperimentConfig::default()
    }
}

fn main() {
    let mut table = Table::new(
        "MMPTCP short flows with different long-flow protocols",
        &[
            "long flows use",
            "short mean FCT (ms)",
            "short p99 (ms)",
            "short flows w/ RTO",
            "long goodput (Gbps)",
            "core loss",
        ],
    );
    for (name, long) in [
        ("mmptcp-8", None),
        ("mptcp-8", Some(Protocol::mptcp8())),
        ("tcp", Some(Protocol::Tcp)),
    ] {
        let r = mmptcp::run(scenario(long));
        let s = r.summary();
        table.add_row(vec![
            name.to_string(),
            format!("{:.2}", s.short_fct_mean_ms),
            format!("{:.2}", s.short_fct_p99_ms),
            s.short_flows_with_rto.to_string(),
            format!("{:.2}", s.long_goodput_gbps),
            format!("{:.4}%", s.core_loss * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("If MMPTCP co-exists in harmony (the paper's early finding), the");
    println!("short-flow statistics should be broadly similar across the rows and");
    println!("the long flows should keep their throughput regardless of protocol.");
}
