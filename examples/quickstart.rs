//! Quickstart: simulate a single 70 KB MMPTCP flow across four equal-cost
//! paths and print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use mmptcp::prelude::*;

fn main() {
    // 1. Describe the experiment: topology, workload, protocol.
    let config = ExperimentConfig {
        topology: TopologySpec::Parallel(ParallelPathConfig {
            host_pairs: 1,
            paths: 4,
            ..ParallelPathConfig::default()
        }),
        workload: WorkloadSpec::Custom(vec![FlowSpec {
            id: 0,
            src: Addr(0),
            dst: Addr(1),
            size: Some(70_000),
            start: SimTime::from_millis(1),
            class: FlowClass::Short,
            deadline: None,
        }]),
        protocol: Protocol::mmptcp_default(),
        seed: 42,
        ..ExperimentConfig::default()
    };

    // 2. Run it.
    let results = mmptcp::run(config);

    // 3. Read the measurements.
    let summary = results.short_fct_summary();
    println!("experiment : {}", results.name);
    println!(
        "flows      : {} (all completed: {})",
        summary.count, results.all_short_completed
    );
    println!("FCT        : {:.3} ms", summary.mean);
    println!(
        "packets    : {} delivered, {} dropped",
        results.counters.delivered_to_hosts, results.counters.dropped
    );
    println!("phase switches: {}", results.phase_switches());
    println!();
    println!("A 70 KB flow finishes inside MMPTCP's packet-scatter phase, so no");
    println!("MPTCP subflows were ever opened — exactly the behaviour the paper");
    println!("wants for latency-sensitive short flows.");
}
