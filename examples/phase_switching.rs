//! Watch MMPTCP's two phases in action on a single long transfer, under both
//! switching strategies the paper proposes (§2 "Phase Switching"):
//!
//! * **Data volume** — switch after a configured number of bytes;
//! * **Congestion event** — switch at the first fast retransmission or RTO.
//!
//! Run with: `cargo run --release --example phase_switching`

use mmptcp::prelude::*;

fn one_long_flow(switch: SwitchStrategy, size: u64) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::Parallel(ParallelPathConfig {
            host_pairs: 2,
            paths: 4,
            ..ParallelPathConfig::default()
        }),
        workload: WorkloadSpec::Custom(vec![
            FlowSpec {
                id: 0,
                src: Addr(0),
                dst: Addr(2),
                size: Some(size),
                start: SimTime::from_millis(1),
                class: FlowClass::Short,
                deadline: None,
            },
            // A competing flow to create some congestion for the
            // congestion-event strategy to react to.
            FlowSpec {
                id: 1,
                src: Addr(1),
                dst: Addr(3),
                size: Some(size),
                start: SimTime::from_millis(1),
                class: FlowClass::Short,
                deadline: None,
            },
        ]),
        protocol: Protocol::Mmptcp {
            subflows: 4,
            switch,
            dupack: None,
        },
        seed: 3,
        ..ExperimentConfig::default()
    }
}

fn describe(label: &str, r: &mmptcp::ExperimentResults) {
    let s = r.short_fct_summary();
    let rec = r.metrics.record(FlowId(0)).unwrap();
    println!("{label}");
    println!(
        "  completion time : {:.2} ms (mean over both flows {:.2} ms)",
        r.metrics
            .fcts_ms(|f| f == FlowId(0))
            .first()
            .copied()
            .unwrap_or(f64::NAN),
        s.mean
    );
    match rec.phase_switched {
        Some(t) => println!(
            "  phase switch    : at {:.2} ms into the run",
            t.as_millis_f64()
        ),
        None => println!("  phase switch    : never (stayed in packet-scatter mode)"),
    }
    println!("  RTOs            : {}", rec.rtos);
    println!();
}

fn main() {
    let size = 2_000_000; // 2 MB: clearly a "long" flow

    let r = mmptcp::run(one_long_flow(SwitchStrategy::DataVolume(210_000), size));
    describe("Data-volume switching (threshold 210 KB):", &r);

    let r = mmptcp::run(one_long_flow(SwitchStrategy::CongestionEvent, size));
    describe("Congestion-event switching:", &r);

    let r = mmptcp::run(one_long_flow(SwitchStrategy::Never, size));
    describe("Never switching (packet-scatter only):", &r);

    let r = mmptcp::run(one_long_flow(
        SwitchStrategy::DataVolume(70_000 * 100),
        size,
    ));
    describe(
        "Data-volume switching with a huge threshold (7 MB > flow size):",
        &r,
    );
}
