//! The paper's headline scenario, at example scale: a 4:1 over-subscribed
//! FatTree where one third of the hosts run long background flows and the
//! rest send Poisson-arriving 70 KB short flows — compared under MPTCP with 8
//! subflows (Figure 1(b)) and MMPTCP (Figure 1(c)).
//!
//! Run with: `cargo run --release --example short_vs_long`

use mmptcp::prelude::*;

fn scenario(protocol: Protocol) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::benchmark()), // 64 hosts, 4:1
        workload: WorkloadSpec::Paper(PaperWorkloadConfig {
            flows_per_short_host: 5,
            ..PaperWorkloadConfig::default()
        }),
        protocol,
        seed: 7,
        ..ExperimentConfig::default()
    }
}

fn main() {
    let mut table = Table::new(
        "Short flows vs long flows: MPTCP-8 vs MMPTCP (example scale)",
        &[
            "protocol",
            "short flows",
            "mean FCT (ms)",
            "std (ms)",
            "p99 (ms)",
            "max (ms)",
            "flows w/ RTO",
            "long goodput (Gbps)",
        ],
    );

    for (name, protocol) in [
        ("mptcp-8", Protocol::mptcp8()),
        ("mmptcp-8", Protocol::mmptcp_default()),
    ] {
        let r = mmptcp::run(scenario(protocol));
        let s = r.short_fct_summary();
        table.add_row(vec![
            name.to_string(),
            s.count.to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.std_dev),
            format!("{:.2}", s.p99),
            format!("{:.2}", s.max),
            r.short_flows_with_rto().to_string(),
            format!("{:.2}", r.long_goodput_bps() / 1e9),
        ]);
    }

    println!("{}", table.render());
    println!("Expected shape (paper §3): similar means, but MMPTCP's standard");
    println!("deviation and tail collapse because short flows no longer wait for");
    println!("retransmission timeouts, while long-flow goodput stays the same.");
}
